// Package sampling implements ℓ-samplings (§2.4) and the distributed
// DFSampling procedure (§6.5).
//
// An ℓ-sampling of a region S is a set P′ ⊆ P ∩ S of robot positions that
// are pairwise more than ℓ apart; S is covered by P′ when every robot of S
// is within ℓ of some position of P′. DFSampling computes an ℓ-sampling by
// a depth-first search over the 2ℓ-disk graph of P ∩ S: around each sampled
// position the team explores the radius-2ℓ ball (clipped to S) with the
// Lemma 1 sweep, moves to any discovered robot that is > ℓ from every
// existing sample, recruits it, and backtracks when no such neighbor exists.
package sampling

import (
	"math"
	"sort"

	"freezetag/internal/geom"
)

// IsLSampling reports whether pts are pairwise at Euclidean distance > ℓ
// (the paper adds a point only when strictly farther than ℓ from all
// samples).
func IsLSampling(pts []geom.Point, ell float64) bool {
	return IsLSamplingIn(nil, pts, ell)
}

// IsLSamplingIn is IsLSampling under metric m (nil defaults to ℓ2); the
// sampler's separation invariant holds in whichever metric the engine runs.
func IsLSamplingIn(m geom.Metric, pts []geom.Point, ell float64) bool {
	mm := geom.MetricOrL2(m)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if mm.Dist(pts[i], pts[j]) <= ell-geom.Eps {
				return false
			}
		}
	}
	return true
}

// Covers reports whether every point of P is within ℓ of some sample.
func Covers(samples, pop []geom.Point, ell float64) bool {
	for _, p := range pop {
		ok := false
		for _, s := range samples {
			if s.Within(p, ell) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// MaxSamples returns the Lemma 4 cardinality bound ⌈16R²/(πℓ²)⌉ on any
// ℓ-sampling of a width-R square.
func MaxSamples(r, ell float64) int {
	return int(math.Ceil(16 * r * r / (math.Pi * ell * ell)))
}

// SortSeeds orders seed positions per the paper's Sort(X): each seed is
// projected to the closest point of the border of square S, and seeds are
// sorted by the clockwise order of their projections around the center
// (ties broken by coordinates for determinism). The returned slice is a
// sorted copy; the input is not modified.
func SortSeeds(s geom.Square, seeds []geom.Point) []geom.Point {
	type keyed struct {
		p   geom.Point
		ang float64
	}
	ks := make([]keyed, len(seeds))
	for i, p := range seeds {
		proj := projectToBorder(s, p)
		v := proj.Sub(s.Center)
		ks[i] = keyed{p: p, ang: -v.Angle()} // negative angle = clockwise order
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].ang != ks[j].ang {
			return ks[i].ang < ks[j].ang
		}
		if ks[i].p.X != ks[j].p.X {
			return ks[i].p.X < ks[j].p.X
		}
		return ks[i].p.Y < ks[j].p.Y
	})
	out := make([]geom.Point, len(ks))
	for i, k := range ks {
		out[i] = k.p
	}
	return out
}

// projectToBorder returns the closest point to p on the boundary of s.
func projectToBorder(s geom.Square, p geom.Point) geom.Point {
	r := s.Rect()
	q := r.Clamp(p)
	if !q.Eq(p) {
		return q // p was outside: clamping lands on the border
	}
	// p inside: push to the nearest side.
	dl := p.X - r.Min.X
	dr := r.Max.X - p.X
	db := p.Y - r.Min.Y
	dt := r.Max.Y - p.Y
	m := math.Min(math.Min(dl, dr), math.Min(db, dt))
	switch m {
	case dl:
		return geom.Pt(r.Min.X, p.Y)
	case dr:
		return geom.Pt(r.Max.X, p.Y)
	case db:
		return geom.Pt(p.X, r.Min.Y)
	default:
		return geom.Pt(p.X, r.Max.Y)
	}
}
