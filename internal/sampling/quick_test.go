package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freezetag/internal/geom"
)

func ptsFromSeed(seed int64, maxN int, span float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*span, rng.Float64()*span)
	}
	return pts
}

func cfg() *quick.Config {
	return &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(5))}
}

// Property: greedily thinning any point set to pairwise distance > ℓ yields
// an ℓ-sampling that covers the original set.
func TestQuickGreedyThinningIsSamplingAndCovers(t *testing.T) {
	f := func(seed int64) bool {
		pts := ptsFromSeed(seed, 80, 12)
		ell := 1.5
		var samples []geom.Point
		for _, p := range pts {
			ok := true
			for _, s := range samples {
				if s.Within(p, ell) {
					ok = false
					break
				}
			}
			if ok {
				samples = append(samples, p)
			}
		}
		return IsLSampling(samples, ell) && Covers(samples, pts, ell)
	}
	if err := quick.Check(f, cfg()); err != nil {
		t.Error(err)
	}
}

// Property: any subset of an ℓ-sampling is an ℓ-sampling; coverage is
// monotone in the sample set.
func TestQuickSamplingSubset(t *testing.T) {
	f := func(seed int64) bool {
		pts := ptsFromSeed(seed, 40, 20)
		ell := 2.0
		var samples []geom.Point
		for _, p := range pts {
			ok := true
			for _, s := range samples {
				if s.Within(p, ell) {
					ok = false
					break
				}
			}
			if ok {
				samples = append(samples, p)
			}
		}
		if len(samples) < 2 {
			return true
		}
		sub := samples[:len(samples)/2]
		if !IsLSampling(sub, ell) {
			return false
		}
		// Coverage monotonicity: whatever sub covers, samples cover too.
		var covered []geom.Point
		for _, p := range pts {
			for _, s := range sub {
				if s.Within(p, ell) {
					covered = append(covered, p)
					break
				}
			}
		}
		return Covers(samples, covered, ell)
	}
	if err := quick.Check(f, cfg()); err != nil {
		t.Error(err)
	}
}

// Property: Lemma 4's bound holds for every greedy sampling of a bounded
// square.
func TestQuickLemma4(t *testing.T) {
	f := func(seed int64) bool {
		span := 10.0
		pts := ptsFromSeed(seed, 120, span)
		ell := 1.0
		var samples []geom.Point
		for _, p := range pts {
			ok := true
			for _, s := range samples {
				if s.Within(p, ell) {
					ok = false
					break
				}
			}
			if ok {
				samples = append(samples, p)
			}
		}
		return len(samples) <= MaxSamples(span, ell)
	}
	if err := quick.Check(f, cfg()); err != nil {
		t.Error(err)
	}
}

// Property: SortSeeds is a permutation (no seed lost or duplicated).
func TestQuickSortSeedsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		pts := ptsFromSeed(seed, 50, 8)
		s := geom.Sq(geom.Pt(4, 4), 10)
		sorted := SortSeeds(s, pts)
		if len(sorted) != len(pts) {
			return false
		}
		count := map[geom.Point]int{}
		for _, p := range pts {
			count[p]++
		}
		for _, p := range sorted {
			count[p]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg()); err != nil {
		t.Error(err)
	}
}
