package sampling

import (
	"sort"

	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// Seed is a DFSampling start position. AsleepID names the sleeping robot at
// the position (recruited if the seed becomes a sample); it is -1 when the
// position carries no sleeping robot (the source position, or the initial
// position of an already-awake robot).
type Seed struct {
	Pos      geom.Point
	AsleepID int
}

// Request parameterizes one DFSampling run.
type Request struct {
	// Region is the sampled region S; samples and DFS candidates are
	// restricted to it.
	Region geom.Rect
	// Square is the square S used for seed ordering (Sort(X)); its Rect
	// normally equals Region.
	Square geom.Square
	// Ell is ℓ. Samples are pairwise > ℓ apart; the DFS hops ≤ 2ℓ.
	Ell float64
	// Target is the number of samples to collect; the run stops as soon as
	// len(Samples) reaches it (case |P′| = 4ℓ of Lemma 5). Zero or negative
	// disables the sample cap.
	Target int
	// RecruitTarget, when positive, additionally stops the run once that
	// many robots have been recruited. ASeparator uses it to fill teams to
	// 4ℓ counting members that already have an origin in the region.
	RecruitTarget int
	// Seeds are the DFS start positions X, unordered (the run sorts them).
	Seeds []Seed
	// Known seeds the discovery state: robots already known to the team,
	// id → initial position, typically from a prior Explore of sep(S).
	Known map[int]geom.Point
	// Admit, when non-nil, restricts sampling/recruiting to positions it
	// accepts. ASeparator passes the sub-square assignment predicate so
	// sibling teams never race to wake the same boundary robot. Positions
	// failing Admit are still recorded as discoveries.
	Admit func(geom.Point) bool
	// NoTeamGrowth keeps recruits out of the exploring team (they are still
	// woken and escorted). The paper's O(ℓ²log k) bound relies on recruits
	// speeding up subsequent ball sweeps; this flag exists for the ablation
	// that quantifies that effect.
	NoTeamGrowth bool
}

// wantMore reports whether the run should continue sampling.
func (r *Request) wantMore(samples, recruits int) bool {
	if r.Target > 0 && samples >= r.Target {
		return false
	}
	if r.RecruitTarget > 0 && recruits >= r.RecruitTarget {
		return false
	}
	return true
}

// Outcome reports a completed DFSampling.
type Outcome struct {
	// Samples is P′, in sampling order.
	Samples []geom.Point
	// Recruits are the ids of robots awakened (and escorted) by this run.
	Recruits []int
	// Discovered maps every robot id seen during the run (or passed in via
	// Known) to its initial position.
	Discovered map[int]geom.Point
	// Covered is Lemma 5's case (2): the run exhausted all branches before
	// reaching any target, so every admitted robot of S is within ℓ of a
	// sample and Discovered holds all of P ∩ S reachable from the seeds.
	Covered bool
	// Members is the team roster after recruiting: the input members plus
	// Recruits, all co-located with the leader.
	Members []int
}

// Run executes DFSampling with the calling process as team leader and
// members as co-located passive teammates. Newly recruited robots join the
// team immediately and speed up subsequent ball explorations (Lemma 5's
// O(ℓ² log |P′|) effect). On budget exhaustion the run returns what it has
// with the error.
func Run(p *sim.Proc, members []int, req Request) (Outcome, error) {
	metric := p.Engine().Metric()
	out := Outcome{Discovered: make(map[int]geom.Point, len(req.Known))}
	for id, pos := range req.Known {
		out.Discovered[id] = pos
	}
	out.Members = append(out.Members, members...)

	// asleep tracks robots believed asleep (discovered asleep, not yet
	// recruited by us). Region exclusivity keeps this belief exact.
	asleep := make(map[int]bool)
	for id := range out.Discovered {
		if p.Engine().Robot(id).State() == sim.Asleep {
			asleep[id] = true
		}
	}

	seedPts := make([]geom.Point, len(req.Seeds))
	seedBy := make(map[geom.Point]int, len(req.Seeds))
	for i, s := range req.Seeds {
		seedPts[i] = s.Pos
		seedBy[s.Pos] = s.AsleepID
		if s.AsleepID >= 0 {
			out.Discovered[s.AsleepID] = s.Pos
			asleep[s.AsleepID] = true
		}
	}
	ordered := SortSeeds(req.Square, seedPts)

	admit := req.Admit
	if admit == nil {
		admit = req.Region.Contains
	}

	farFromSamples := func(q geom.Point) bool {
		for _, s := range out.Samples {
			if geom.WithinIn(metric, s, q, req.Ell) {
				return false
			}
		}
		return true
	}

	// addSample moves the team to q, records the sample, and recruits the
	// sleeping robot there if any.
	addSample := func(q geom.Point, robotID int) error {
		if _, err := p.Escort(out.Members, q); err != nil {
			return err
		}
		out.Samples = append(out.Samples, q)
		if robotID >= 0 && asleep[robotID] {
			p.Wake(robotID, nil) // recruited: passive team member
			delete(asleep, robotID)
			out.Recruits = append(out.Recruits, robotID)
			out.Members = append(out.Members, robotID)
		}
		return nil
	}

	// exploreBall sweeps B(cur, 2ℓ) ∩ S with the whole team and returns to
	// cur, merging discoveries. Each ball is swept at most once (backtracking
	// must cost only moves, per the Lemma 5 analysis).
	explored := make(map[geom.Point]bool)
	exploreBall := func(cur geom.Point) error {
		if explored[cur] {
			return nil
		}
		explored[cur] = true
		ball := geom.DiskAt(cur, 2*req.Ell).BoundingSquare().Rect()
		clip := geom.Rect{
			Min: geom.Pt(maxf(ball.Min.X, req.Region.Min.X), maxf(ball.Min.Y, req.Region.Min.Y)),
			Max: geom.Pt(minf(ball.Max.X, req.Region.Max.X), minf(ball.Max.Y, req.Region.Max.Y)),
		}
		if clip.Min.X > clip.Max.X || clip.Min.Y > clip.Max.Y {
			return nil
		}
		sweepers := out.Members
		if req.NoTeamGrowth {
			sweepers = members // ablation: only the original team sweeps
		}
		res, err := explore.Rect(p, sweepers, clip, cur)
		if err != nil {
			return err
		}
		for id, pos := range res.Asleep {
			if _, known := out.Discovered[id]; !known {
				out.Discovered[id] = pos
				asleep[id] = true
			}
		}
		for id, pos := range res.AwakeSeen {
			if _, known := out.Discovered[id]; !known {
				// An awake robot seen mid-run: record its observed position
				// as knowledge; it is not a sampling candidate.
				out.Discovered[id] = pos
			}
		}
		return nil
	}

	// nextCandidate picks the sampling candidate reachable from cur: a
	// discovered sleeping robot in S within 2ℓ of cur and > ℓ from every
	// sample; nearest first, then lowest id, for determinism.
	nextCandidate := func(cur geom.Point) (int, geom.Point, bool) {
		type cand struct {
			id  int
			pos geom.Point
			d   float64
		}
		var cs []cand
		for id := range asleep {
			pos := out.Discovered[id]
			if !admit(pos) {
				continue
			}
			d := metric.Dist(cur, pos)
			if d > 2*req.Ell+geom.Eps {
				continue
			}
			if !farFromSamples(pos) {
				continue
			}
			cs = append(cs, cand{id: id, pos: pos, d: d})
		}
		if len(cs) == 0 {
			return 0, geom.Point{}, false
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].d != cs[j].d {
				return cs[i].d < cs[j].d
			}
			return cs[i].id < cs[j].id
		})
		return cs[0].id, cs[0].pos, true
	}

	for _, seed := range ordered {
		if !req.wantMore(len(out.Samples), len(out.Recruits)) {
			break
		}
		if !admit(seed) {
			continue // assigned to a sibling region
		}
		if !farFromSamples(seed) {
			continue // B_seed(ℓ) already covered
		}
		if err := addSample(seed, seedBy[seed]); err != nil {
			return out, err
		}
		// Depth-first search from this seed over the 2ℓ-disk graph.
		stack := []geom.Point{seed}
		for len(stack) > 0 && req.wantMore(len(out.Samples), len(out.Recruits)) {
			cur := stack[len(stack)-1]
			if err := exploreBall(cur); err != nil {
				return out, err
			}
			id, pos, ok := nextCandidate(cur)
			if !ok {
				// Backtrack one hop.
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					if _, err := p.Escort(out.Members, stack[len(stack)-1]); err != nil {
						return out, err
					}
				}
				continue
			}
			if err := addSample(pos, id); err != nil {
				return out, err
			}
			stack = append(stack, pos)
		}
	}
	out.Covered = req.wantMore(len(out.Samples), len(out.Recruits))
	return out, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
