package sampling

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func TestIsLSampling(t *testing.T) {
	good := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 3)}
	if !IsLSampling(good, 2) {
		t.Error("pairwise-3 set should be a 2-sampling")
	}
	bad := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if IsLSampling(bad, 2) {
		t.Error("distance-1 pair should not be a 2-sampling")
	}
	if !IsLSampling(nil, 2) || !IsLSampling(good[:1], 2) {
		t.Error("empty and singleton sets are always samplings")
	}
}

func TestCovers(t *testing.T) {
	samples := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}
	pop := []geom.Point{geom.Pt(1, 0), geom.Pt(3.5, 0.5)}
	if !Covers(samples, pop, 2) {
		t.Error("population within 2 of samples should be covered")
	}
	if Covers(samples, append(pop, geom.Pt(10, 10)), 2) {
		t.Error("far point should break coverage")
	}
	if !Covers(nil, nil, 2) {
		t.Error("empty population is trivially covered")
	}
}

func TestMaxSamplesLemma4(t *testing.T) {
	// Greedily build a maximal ℓ-sampling of random squares and verify the
	// Lemma 4 bound |P′| ≤ 16R²/(πℓ²).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		r := 4 + rng.Float64()*12
		ell := 0.5 + rng.Float64()*2
		var samples []geom.Point
		for i := 0; i < 4000; i++ {
			q := geom.Pt(rng.Float64()*r, rng.Float64()*r)
			ok := true
			for _, s := range samples {
				if s.Within(q, ell) {
					ok = false
					break
				}
			}
			if ok {
				samples = append(samples, q)
			}
		}
		if len(samples) > MaxSamples(r, ell) {
			t.Fatalf("trial %d: %d samples exceed Lemma 4 bound %d (R=%v ℓ=%v)",
				trial, len(samples), MaxSamples(r, ell), r, ell)
		}
	}
}

func TestSortSeedsClockwise(t *testing.T) {
	s := geom.Sq(geom.Origin, 10)
	// Seeds near the four borders: east, north, west, south.
	east := geom.Pt(4.5, 0)
	north := geom.Pt(0, 4.5)
	west := geom.Pt(-4.5, 0)
	south := geom.Pt(0, -4.5)
	got := SortSeeds(s, []geom.Point{west, north, east, south})
	// Clockwise from the angle-0 side: east, south, west, north (negative
	// angle ordering puts angle 0 first, then decreasing angle = clockwise:
	// east(0) → south(-π/2) → west(π)... verify by adjacency rather than
	// absolute start: consecutive elements must be 90° apart clockwise.
	idx := map[geom.Point]int{}
	for i, p := range got {
		idx[p] = i
	}
	// east must be immediately followed (mod 4) by south in clockwise order.
	if (idx[south]-idx[east]+4)%4 != 1 {
		t.Errorf("order = %v: south should follow east clockwise", got)
	}
	if (idx[west]-idx[south]+4)%4 != 1 {
		t.Errorf("order = %v: west should follow south clockwise", got)
	}
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestSortSeedsDeterministic(t *testing.T) {
	s := geom.Sq(geom.Origin, 8)
	rng := rand.New(rand.NewSource(19))
	seeds := make([]geom.Point, 20)
	for i := range seeds {
		seeds[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
	}
	a := SortSeeds(s, seeds)
	// Shuffle and re-sort: same order.
	shuffled := append([]geom.Point(nil), seeds...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := SortSeeds(s, shuffled)
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatalf("order differs at %d: %v vs %v", i, a, b)
		}
	}
}

func TestProjectToBorder(t *testing.T) {
	s := geom.Sq(geom.Origin, 10)
	cases := []struct {
		in, want geom.Point
	}{
		{geom.Pt(4, 0), geom.Pt(5, 0)},   // near east side
		{geom.Pt(0, -4), geom.Pt(0, -5)}, // near south side
		{geom.Pt(7, 1), geom.Pt(5, 1)},   // outside: clamp
	}
	for _, c := range cases {
		got := projectToBorder(s, c.in)
		if !got.Eq(c.want) {
			t.Errorf("projectToBorder(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Border points project to themselves.
	onEdge := geom.Pt(5, 2)
	if got := projectToBorder(s, onEdge); !got.Eq(onEdge) {
		t.Errorf("border point moved to %v", got)
	}
	// Projection always lands on the border.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		q := projectToBorder(s, p)
		r := s.Rect()
		onX := math.Abs(q.X-r.Min.X) < 1e-9 || math.Abs(q.X-r.Max.X) < 1e-9
		onY := math.Abs(q.Y-r.Min.Y) < 1e-9 || math.Abs(q.Y-r.Max.Y) < 1e-9
		if !(onX && q.Y >= r.Min.Y-1e-9 && q.Y <= r.Max.Y+1e-9) &&
			!(onY && q.X >= r.Min.X-1e-9 && q.X <= r.Max.X+1e-9) {
			t.Fatalf("projection of %v = %v not on border", p, q)
		}
	}
}
