package sampling

import (
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// runDFS builds an engine over sleepers and runs one DFSampling from the
// source position with the given parameters, returning the outcome.
func runDFS(t *testing.T, sleepers []geom.Point, region geom.Square, ell float64, target int) (Outcome, sim.Result) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
	var out Outcome
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		var err error
		out, err = Run(p, nil, Request{
			Region: region.Rect(),
			Square: region,
			Ell:    ell,
			Target: target,
			Seeds:  []Seed{{Pos: geom.Origin, AsleepID: -1}},
		})
		if err != nil {
			t.Errorf("DFSampling: %v", err)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestDFSamplingChain(t *testing.T) {
	// A chain of robots spaced 1.5 with ℓ=2: consecutive robots are within
	// 2ℓ of each other, so the DFS walks the chain; samples must be an
	// ℓ-sampling and, with a generous target, cover everything.
	var sleepers []geom.Point
	for i := 1; i <= 10; i++ {
		sleepers = append(sleepers, geom.Pt(float64(i)*1.5, 0))
	}
	region := geom.Sq(geom.Pt(8, 0), 40)
	out, _ := runDFS(t, sleepers, region, 2, 100)
	if !IsLSampling(out.Samples, 2) {
		t.Errorf("samples not a 2-sampling: %v", out.Samples)
	}
	if !out.Covered {
		t.Error("run below target must report Covered")
	}
	if !Covers(out.Samples, sleepers, 2) {
		t.Errorf("samples %v do not cover the chain", out.Samples)
	}
	if len(out.Discovered) != len(sleepers) {
		t.Errorf("discovered %d of %d", len(out.Discovered), len(sleepers))
	}
}

func TestDFSamplingTargetStops(t *testing.T) {
	var sleepers []geom.Point
	for i := 1; i <= 12; i++ {
		sleepers = append(sleepers, geom.Pt(float64(i)*2.5, 0))
	}
	region := geom.Sq(geom.Pt(15, 0), 80)
	out, _ := runDFS(t, sleepers, region, 2, 4)
	if len(out.Samples) != 4 {
		t.Fatalf("samples = %d, want target 4", len(out.Samples))
	}
	if out.Covered {
		t.Error("run that hit target must not report Covered")
	}
}

func TestDFSamplingRecruitsJoinTeam(t *testing.T) {
	var sleepers []geom.Point
	for i := 1; i <= 5; i++ {
		sleepers = append(sleepers, geom.Pt(float64(i)*1.8, 0))
	}
	region := geom.Sq(geom.Pt(5, 0), 30)
	out, _ := runDFS(t, sleepers, region, 1.5, 100)
	if len(out.Recruits) == 0 {
		t.Fatal("no recruits")
	}
	if len(out.Members) != len(out.Recruits) {
		t.Errorf("members = %v, recruits = %v", out.Members, out.Recruits)
	}
}

func TestDFSamplingRespectsRegion(t *testing.T) {
	// Robots outside the region must not be sampled or recruited.
	sleepers := []geom.Point{geom.Pt(1, 0), geom.Pt(10, 0)}
	region := geom.Sq(geom.Origin, 6) // only the first robot is inside
	out, _ := runDFS(t, sleepers, region, 2, 100)
	for _, id := range out.Recruits {
		if id == 2 {
			t.Error("recruited a robot outside the region")
		}
	}
	for _, s := range out.Samples {
		if !region.Contains(s) {
			t.Errorf("sample %v outside region", s)
		}
	}
}

func TestDFSamplingBranching(t *testing.T) {
	// A plus-shaped cluster around the origin: DFS must branch and backtrack
	// to reach all four arms.
	var sleepers []geom.Point
	for i := 1; i <= 3; i++ {
		d := float64(i) * 1.8
		sleepers = append(sleepers,
			geom.Pt(d, 0), geom.Pt(-d, 0), geom.Pt(0, d), geom.Pt(0, -d))
	}
	region := geom.Sq(geom.Origin, 30)
	out, _ := runDFS(t, sleepers, region, 1.5, 100)
	if !out.Covered {
		t.Fatal("should cover the plus shape")
	}
	if !Covers(out.Samples, sleepers, 1.5) {
		t.Errorf("arms not covered: %d samples", len(out.Samples))
	}
	if !IsLSampling(out.Samples, 1.5) {
		t.Error("not an ℓ-sampling")
	}
}

func TestDFSamplingCoverageRandomConnected(t *testing.T) {
	// Random-walk instances (ℓ-connected by construction): with an
	// unreachable target, DFSampling must discover every robot (Lemma 5
	// case 2) whenever the walk stays within 2ℓ steps.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(20)
		pts := make([]geom.Point, n)
		cur := geom.Origin
		for i := range pts {
			cur = cur.Add(geom.Pt(rng.Float64()*1.6-0.8, rng.Float64()*1.6-0.8))
			pts[i] = cur
		}
		ell := 1.5 // walk steps are < 1.14, well under ℓ
		region := geom.Sq(geom.Origin, 200)
		out, _ := runDFS(t, pts, region, ell, 1<<30)
		if !out.Covered {
			t.Fatalf("trial %d: not covered", trial)
		}
		if len(out.Discovered) != n {
			t.Fatalf("trial %d: discovered %d of %d", trial, len(out.Discovered), n)
		}
		if !IsLSampling(out.Samples, ell) {
			t.Fatalf("trial %d: invalid sampling", trial)
		}
		if !Covers(out.Samples, pts, ell) {
			t.Fatalf("trial %d: population not covered", trial)
		}
	}
}

func TestDFSamplingSeedOrderUsed(t *testing.T) {
	// Two disjoint clusters reachable only from their own seeds: both seeds
	// must be visited once the first branch exhausts.
	sleepersA := []geom.Point{geom.Pt(5, 5), geom.Pt(6.5, 5)}
	sleepersB := []geom.Point{geom.Pt(-5, -5), geom.Pt(-6.5, -5)}
	all := append(append([]geom.Point{}, sleepersA...), sleepersB...)
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: all})
	region := geom.Sq(geom.Origin, 40)
	var out Outcome
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		var err error
		out, err = Run(p, nil, Request{
			Region: region.Rect(),
			Square: region,
			Ell:    2,
			Target: 1 << 30,
			Seeds: []Seed{
				{Pos: geom.Pt(5, 5), AsleepID: 1},
				{Pos: geom.Pt(-5, -5), AsleepID: 3},
			},
		})
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out.Discovered) != 4 {
		t.Fatalf("discovered %d of 4", len(out.Discovered))
	}
	if !Covers(out.Samples, all, 2) {
		t.Errorf("not all robots covered: %v", out.Samples)
	}
}

func TestDFSamplingSkipsCoveredSeeds(t *testing.T) {
	// Seeds within ℓ of an existing sample are skipped, so two co-located
	// seeds yield one sample.
	sleepers := []geom.Point{geom.Pt(1, 0), geom.Pt(1.2, 0)}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
	region := geom.Sq(geom.Origin, 20)
	var out Outcome
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		var err error
		out, err = Run(p, nil, Request{
			Region: region.Rect(),
			Square: region,
			Ell:    2,
			Target: 1 << 30,
			Seeds: []Seed{
				{Pos: geom.Pt(1, 0), AsleepID: 1},
				{Pos: geom.Pt(1.2, 0), AsleepID: 2},
			},
		})
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 1 {
		t.Fatalf("samples = %v, want exactly 1 (second seed covered)", out.Samples)
	}
	if len(out.Recruits) != 1 {
		t.Errorf("recruits = %v", out.Recruits)
	}
}
