package explore

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

func TestPlanRectCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		w := 0.5 + rng.Float64()*12
		h := 0.5 + rng.Float64()*12
		r := geom.RectWH(geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5), w, h)
		pl := PlanRect(r)
		probes := make([]geom.Point, 200)
		for i := range probes {
			probes[i] = geom.Pt(
				r.Min.X+rng.Float64()*w,
				r.Min.Y+rng.Float64()*h,
			)
		}
		// Corners are the hardest points; include them.
		for _, c := range r.Corners() {
			probes = append(probes, c)
		}
		if !pl.Covers(probes) {
			t.Fatalf("trial %d: plan does not cover rect %v", trial, r)
		}
	}
}

func TestPlanRectLengthBound(t *testing.T) {
	// Lemma 1: length O(wh + w + h). Check an explicit constant: the
	// serpentine visits ny rows of length ≤ w with ≤ √2·ny of vertical travel.
	for _, dim := range [][2]float64{{4, 4}, {10, 2}, {2, 10}, {20, 20}, {1, 1}} {
		w, h := dim[0], dim[1]
		r := geom.RectWH(geom.Origin, w, h)
		pl := PlanRect(r)
		length := pl.Length(r.Min, r.Min)
		bound := w*h + 3*(w+h) + 10
		if length > bound {
			t.Errorf("plan length %v exceeds bound %v for %vx%v", length, bound, w, h)
		}
	}
}

func TestPlanDegenerate(t *testing.T) {
	r := geom.RectWH(geom.Pt(3, 3), 0, 0)
	pl := PlanRect(r)
	if len(pl.Stops) != 1 || !pl.Stops[0].Eq(geom.Pt(3, 3)) {
		t.Errorf("degenerate plan = %v", pl.Stops)
	}
}

func TestRectFindsAllSleepers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	region := geom.RectWH(geom.Origin, 8, 8)
	var sleepers []geom.Point
	for i := 0; i < 25; i++ {
		sleepers = append(sleepers, geom.Pt(rng.Float64()*8, rng.Float64()*8))
	}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
	var res *Result
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		var err error
		res, err = Rect(p, nil, region, geom.Pt(4, 4))
		if err != nil {
			t.Errorf("Rect: %v", err)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(res.Asleep) != len(sleepers) {
		t.Fatalf("found %d of %d sleepers", len(res.Asleep), len(sleepers))
	}
	for id, pos := range res.Asleep {
		if !pos.Eq(sleepers[id-1]) {
			t.Errorf("sleeper %d at %v, recorded %v", id, sleepers[id-1], pos)
		}
	}
	// The explorer must end at the rendezvous point.
	if !e.Robot(0).Pos().Eq(geom.Pt(4, 4)) {
		t.Errorf("explorer ended at %v", e.Robot(0).Pos())
	}
}

func TestRectTeamSpeedup(t *testing.T) {
	// A team of k robots should explore in roughly 1/k the single-robot
	// sweep time plus overhead (Lemma 1: O(wh/k + w + h)).
	region := geom.RectWH(geom.Origin, 16, 16)
	rng := rand.New(rand.NewSource(33))
	var sleepers []geom.Point
	// Four team members sleeping at the source, plus targets spread out.
	for i := 0; i < 3; i++ {
		sleepers = append(sleepers, geom.Origin)
	}
	for i := 0; i < 20; i++ {
		sleepers = append(sleepers, geom.Pt(rng.Float64()*16, rng.Float64()*16))
	}
	durations := map[int]float64{}
	for _, k := range []int{1, 4} {
		e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
		e.Spawn(sim.SourceID, func(p *sim.Proc) {
			var members []int
			for i := 1; i < k; i++ {
				p.Wake(i, nil)
				members = append(members, i)
			}
			start := p.Now()
			res, err := Rect(p, members, region, geom.Pt(8, 8))
			if err != nil {
				t.Errorf("Rect: %v", err)
			}
			durations[k] = p.Now() - start
			if len(res.Asleep) < 20 {
				t.Errorf("k=%d found only %d sleepers", k, len(res.Asleep))
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if durations[4] >= durations[1] {
		t.Errorf("team of 4 (%v) not faster than single robot (%v)", durations[4], durations[1])
	}
	if durations[4] > durations[1]/2 {
		t.Errorf("team of 4 speedup too weak: %v vs %v", durations[4], durations[1])
	}
}

func TestRectSynchronizedArrival(t *testing.T) {
	// All team members must be co-located at dest when Rect returns.
	region := geom.RectWH(geom.Origin, 10, 10)
	sleepers := []geom.Point{geom.Origin, geom.Origin, geom.Pt(9, 9)}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
	dest := geom.Pt(5, 5)
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		p.Wake(1, nil)
		p.Wake(2, nil)
		if _, err := Rect(p, []int{1, 2}, region, dest); err != nil {
			t.Errorf("Rect: %v", err)
		}
		for _, id := range []int{1, 2} {
			if !p.Engine().Robot(id).Pos().Eq(dest) {
				t.Errorf("member %d at %v, want %v", id, p.Engine().Robot(id).Pos(), dest)
			}
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpiralFindsTarget(t *testing.T) {
	target := geom.Pt(3, 2)
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: []geom.Point{target}})
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		s, found, err := Spiral(p, 10)
		if err != nil {
			t.Errorf("Spiral: %v", err)
		}
		if !found || s.ID != 1 {
			t.Errorf("found=%v sighting=%+v", found, s)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpiralCostQuadratic(t *testing.T) {
	// Discovery cost of a target at distance D grows ~quadratically: the
	// spiral must sweep area πD² at width-2 coverage per unit length.
	cost := func(d float64) float64 {
		e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(d, 0)}})
		var c float64
		e.Spawn(sim.SourceID, func(p *sim.Proc) {
			if _, found, err := Spiral(p, d+2); err != nil || !found {
				t.Errorf("spiral(d=%v): found=%v err=%v", d, found, err)
			}
			c = p.Self().Energy()
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	c4, c16 := cost(4), cost(16)
	ratio := c16 / c4
	// Quadratic growth: 16x area; accept 8x..32x.
	if ratio < 8 || ratio > 32 {
		t.Errorf("spiral cost ratio = %v (c4=%v c16=%v), want ~16", ratio, c4, c16)
	}
}

func TestSpiralMissReturnsNotFound(t *testing.T) {
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(50, 0)}})
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		_, found, err := Spiral(p, 5)
		if err != nil {
			t.Errorf("Spiral: %v", err)
		}
		if found {
			t.Error("target at 50 should not be found within radius 5")
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpiralPlanCoverage(t *testing.T) {
	pl := SpiralPlan(geom.Origin, 6)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		ang := rng.Float64() * 2 * math.Pi
		r := rng.Float64() * 5 // stay a pitch inside maxR
		probe := geom.Pt(r*math.Cos(ang), r*math.Sin(ang))
		if !pl.Covers([]geom.Point{probe}) {
			t.Fatalf("spiral misses %v (r=%v)", probe, r)
		}
	}
}

// The discovery pitch is metric-calibrated (1/Stretch): under every
// supported metric, every point of the spiral's interior must be within
// metric distance 1 of some stop. Under ℓ1 the old ℓ2-calibrated pitch 1
// left a ~0.4% coverage gap — this sweep would catch it.
func TestSpiralPlanCoverageIn(t *testing.T) {
	lp15, err := geom.Lp(1.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	center := geom.Pt(3, -2)
	for _, m := range []geom.Metric{geom.L1, geom.L2, geom.LInf, lp15} {
		pl := SpiralPlanIn(m, center, 6)
		misses := 0
		for i := 0; i < 4000; i++ {
			ang := rng.Float64() * 2 * math.Pi
			r := rng.Float64() * 5 // stay a winding inside maxR
			probe := center.Add(geom.Pt(r*math.Cos(ang), r*math.Sin(ang)))
			if !pl.CoversIn(m, []geom.Point{probe}) {
				misses++
				t.Errorf("%s: spiral misses %v (r=%v)", m.Name(), probe, r)
				if misses > 5 {
					t.FailNow()
				}
			}
		}
	}
}

// The ℓ2 spiral is the same plan it always was (Stretch = 1 ⇒ pitch 1),
// and the ℓ1 spiral is strictly finer (pitch 1/√2).
func TestSpiralPlanPitchPerMetric(t *testing.T) {
	l2 := SpiralPlan(geom.Origin, 4)
	l2In := SpiralPlanIn(geom.L2, geom.Origin, 4)
	if len(l2.Stops) != len(l2In.Stops) {
		t.Fatalf("ℓ2 SpiralPlanIn diverged from SpiralPlan: %d vs %d stops", len(l2In.Stops), len(l2.Stops))
	}
	for i := range l2.Stops {
		if l2.Stops[i] != l2In.Stops[i] {
			t.Fatalf("ℓ2 stop %d moved: %v vs %v", i, l2In.Stops[i], l2.Stops[i])
		}
	}
	l1 := SpiralPlanIn(geom.L1, geom.Origin, 4)
	if len(l1.Stops) <= len(l2.Stops) {
		t.Fatalf("ℓ1 spiral should be finer: %d stops vs ℓ2's %d", len(l1.Stops), len(l2.Stops))
	}
}

func TestRectBudgetSurvivesPartially(t *testing.T) {
	// With a tiny budget the explorer halts but Rect still returns without
	// deadlock and reports what was seen.
	region := geom.RectWH(geom.Origin, 10, 10)
	e := sim.NewEngine(sim.Config{
		Source:   geom.Origin,
		Sleepers: []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(9.5, 9.5)},
		Budget:   3,
	})
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		res, err := Rect(p, nil, region, geom.Pt(5, 5))
		if err == nil {
			t.Error("expected budget error")
		}
		if len(res.Asleep) == 0 {
			t.Error("should have seen the nearby sleeper before halting")
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Error("expected a budget violation record")
	}
}
