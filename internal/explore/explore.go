// Package explore implements the paper's exploration procedures:
//
//   - Lemma 1's boustrophedon (zigzag) rectangle sweep with √2 row pitch and
//     √2 snapshot pitch, for a single robot or a team of k robots exploring
//     k horizontal strips in parallel, in time O(wh/k + w + h);
//   - the Archimedean spiral search used as the single-robot discovery
//     baseline (the Θ(D²) cow-path argument from the introduction).
//
// Planning is pure (waypoint lists), execution runs on the simulator.
package explore

import (
	"fmt"
	"math"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// snapPitch is the Euclidean snapshot and row pitch √2: a radius-1 view
// contains the axis-parallel square of width √2 centered on the robot, so a
// √2 × √2 grid of snapshot points covers the plane. Under other metrics the
// pitch is the metric's inscribed-square width (1 for ℓ1, 2 for ℓ∞); see
// PlanRectIn.
var snapPitch = math.Sqrt2

// Plan is a deterministic exploration trajectory: the robot visits Stops in
// order and performs a Look at each.
type Plan struct {
	Stops []geom.Point
}

// PlanRect returns the single-robot zigzag plan covering rectangle r under
// Euclidean looks: every point of r is within distance 1 of some stop. Rows
// alternate direction so consecutive stops stay close (serpentine order).
// Degenerate rectangles yield a single-stop plan at the center.
func PlanRect(r geom.Rect) Plan { return planRectPitch(r, snapPitch) }

// PlanRectIn returns the zigzag plan covering r with radius-1 looks under
// metric m: the pitch is the side of the largest axis-aligned square
// inscribed in m's unit ball, so the stop lattice still covers every point
// of r. A tighter ball (ℓ1) means a finer lattice and a longer sweep; a
// looser one (ℓ∞) a coarser, cheaper sweep.
func PlanRectIn(m geom.Metric, r geom.Rect) Plan {
	return planRectPitch(r, geom.MetricOrL2(m).InscribedSquare())
}

func planRectPitch(r geom.Rect, pitch float64) Plan {
	return planRectInto(r, pitch, nil)
}

// planRectInto is planRectPitch writing the stop lattice into the provided
// buffer when it is large enough (the arena-backed serving path feeds it
// pooled buffers); the emitted stops are bit-identical either way.
func planRectInto(r geom.Rect, pitch float64, stops []geom.Point) Plan {
	w, h := r.Width(), r.Height()
	nx := int(math.Ceil(w / pitch))
	if nx < 1 {
		nx = 1
	}
	ny := int(math.Ceil(h / pitch))
	if ny < 1 {
		ny = 1
	}
	dx, dy := w/float64(nx), h/float64(ny)
	if cap(stops) < nx*ny {
		stops = make([]geom.Point, 0, nx*ny)
	} else {
		stops = stops[:0]
	}
	for row := 0; row < ny; row++ {
		y := r.Min.Y + (float64(row)+0.5)*dy
		for col := 0; col < nx; col++ {
			c := col
			if row%2 == 1 {
				c = nx - 1 - col // serpentine
			}
			x := r.Min.X + (float64(c)+0.5)*dx
			stops = append(stops, geom.Pt(x, y))
		}
	}
	return Plan{Stops: stops}
}

// Length returns the Euclidean travel length of the plan starting from
// `from` and ending at `to` (entry and exit legs included).
func (pl Plan) Length(from, to geom.Point) float64 { return pl.LengthIn(nil, from, to) }

// LengthIn returns the plan's travel length under metric m.
func (pl Plan) LengthIn(m geom.Metric, from, to geom.Point) float64 {
	mm := geom.MetricOrL2(m)
	if len(pl.Stops) == 0 {
		return mm.Dist(from, to)
	}
	return mm.Dist(from, pl.Stops[0]) + geom.PathLengthIn(mm, pl.Stops) +
		mm.Dist(pl.Stops[len(pl.Stops)-1], to)
}

// Covers reports whether every one of the probe points is within Euclidean
// distance 1 of some stop; used by the property tests as the Lemma 1
// validity check.
func (pl Plan) Covers(probes []geom.Point) bool { return pl.CoversIn(nil, probes) }

// CoversIn is Covers with visibility measured under metric m.
func (pl Plan) CoversIn(m geom.Metric, probes []geom.Point) bool {
	mm := geom.MetricOrL2(m)
	for _, q := range probes {
		ok := false
		for _, s := range pl.Stops {
			if geom.WithinIn(mm, s, q, 1) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Result is the merged outcome of an exploration: the sleeping robots seen,
// keyed by robot id, with their (initial) positions.
type Result struct {
	Asleep map[int]geom.Point
	// AwakeSeen lists awake robots observed during the sweep, keyed by id,
	// at the position they were observed.
	AwakeSeen map[int]geom.Point
}

func newResult() *Result {
	return &Result{Asleep: make(map[int]geom.Point), AwakeSeen: make(map[int]geom.Point)}
}

// rectScratch is the per-engine exploration pool: recycled Results (their
// maps keep capacity; they are cleared on checkout) and stop-lattice
// buffers checked out for the duration of one plan. It lives in the
// engine's scratch stash, so a pooled engine's repeated runs settle into
// allocation-free exploration.
type rectScratch struct {
	resFree  []*Result
	stopFree [][]geom.Point
	// keyseq disambiguates solo-sweep barrier keys (several explorations can
	// share an (ID, Now) pair). A counter rather than a pointer address: %p
	// of a local would force the local to heap on every call, traced or not.
	keyseq uint64
}

func scratchOf(e *sim.Engine) *rectScratch {
	return sim.ScratchOf(e, "explore.rect", func() *rectScratch { return &rectScratch{} })
}

func (sc *rectScratch) getResult() *Result {
	if n := len(sc.resFree); n > 0 {
		res := sc.resFree[n-1]
		sc.resFree = sc.resFree[:n-1]
		clear(res.Asleep)
		clear(res.AwakeSeen)
		return res
	}
	return newResult()
}

func (sc *rectScratch) getStops() []geom.Point {
	if n := len(sc.stopFree); n > 0 {
		s := sc.stopFree[n-1]
		sc.stopFree = sc.stopFree[:n-1]
		return s[:0]
	}
	return nil
}

// Recycle returns a Result obtained from Rect to the engine's exploration
// pool. Callers that are done with a result — typically right after copying
// the sightings they need — recycle it so the next exploration reuses its
// maps; the result must not be used after.
func Recycle(p *sim.Proc, res *Result) {
	if res == nil {
		return
	}
	sc := scratchOf(p.Engine())
	sc.resFree = append(sc.resFree, res)
}

func (res *Result) absorb(snap sim.Snapshot) {
	for _, s := range snap.Asleep {
		res.Asleep[s.ID] = s.Pos
	}
	for _, s := range snap.Awake {
		res.AwakeSeen[s.ID] = s.Pos
	}
}

// runPlan drives one robot through pl, looking at every stop, then moves it
// to dest. Budget exhaustion aborts the remaining stops but still reports
// what was seen; the error is returned alongside.
func runPlan(p *sim.Proc, pl Plan, dest geom.Point, res *Result) error {
	for _, stop := range pl.Stops {
		if err := p.MoveTo(stop); err != nil {
			return err
		}
		res.absorb(p.Look())
	}
	return p.MoveTo(dest)
}

// Rect explores rectangle r with the caller plus the passive awake team
// members in memberIDs (all co-located with the caller), implementing
// Lemma 1: the rectangle is split into k = 1+len(memberIDs) horizontal
// strips, each robot sweeps one strip, and everyone meets at dest. The call
// returns when the whole team has gathered at dest with merged knowledge.
//
// Team members must be awake and co-located with the caller; they run
// temporary processes and are passive again (parked at dest) on return.
func Rect(p *sim.Proc, memberIDs []int, r geom.Rect, dest geom.Point) (*Result, error) {
	metric := p.Engine().Metric()
	if len(memberIDs) == 0 {
		// Lemma 1 with k = 1 degenerates to a single sweep of r itself
		// (HStrips(1) returns r bit-for-bit), and a one-party barrier
		// releases its arriver immediately, so its only observable effect is
		// the trace event. The solo path therefore plans straight over r out
		// of the engine's pooled buffers and touches the barrier machinery
		// only when a trace sink is listening; stops and looks are
		// bit-identical to the general path.
		e := p.Engine()
		sc := scratchOf(e)
		res := sc.getResult()
		var key string
		if e.Tracing() {
			sc.keyseq++
			key = fmt.Sprintf("explore/%d/%.9f/%d", p.ID(), p.Now(), sc.keyseq)
		}
		pl := planRectInto(r, geom.MetricOrL2(metric).InscribedSquare(), sc.getStops())
		err := runPlan(p, pl, dest, res)
		sc.stopFree = append(sc.stopFree, pl.Stops)
		if e.Tracing() {
			p.Barrier(key, 1)
		}
		return res, err
	}
	k := 1 + len(memberIDs)
	strips := r.HStrips(k)
	key := fmt.Sprintf("explore/%d/%.9f/%p", p.ID(), p.Now(), &strips)
	results := make([]*Result, k)
	errs := make([]error, k)
	for i, id := range memberIDs {
		i, id := i, id
		results[i+1] = newResult()
		p.Engine().Spawn(id, func(q *sim.Proc) {
			errs[i+1] = runPlan(q, PlanRectIn(metric, strips[i+1]), dest, results[i+1])
			q.Barrier(key, k)
		})
	}
	results[0] = newResult()
	errs[0] = runPlan(p, PlanRectIn(metric, strips[0]), dest, results[0])
	p.Barrier(key, k)
	merged := newResult()
	var firstErr error
	for i, res := range results {
		for id, pos := range res.Asleep {
			merged.Asleep[id] = pos
		}
		for id, pos := range res.AwakeSeen {
			merged.AwakeSeen[id] = pos
		}
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return merged, firstErr
}

// SpiralPlan returns snapshot stops along an Archimedean spiral under
// Euclidean looks; see SpiralPlanIn.
func SpiralPlan(center geom.Point, maxR float64) Plan {
	return SpiralPlanIn(nil, center, maxR)
}

// SpiralPlanIn returns snapshot stops along an Archimedean spiral r = a·θ,
// starting at the origin `center`, out to radius maxR, with radius-1 looks
// measured under metric m. Unlike the zigzag lattice, stops on adjacent
// spiral windings are not aligned, so under ℓ2 the winding pitch and arc
// step are both 1 (not √2): a point midway between windings is then at
// Euclidean distance ≤ √(0.5²+0.5²) ≈ 0.71 < 1 from some stop. Under other
// metrics the worst-case offset square is rotated relative to the metric's
// unit ball, so the safe generalization scales the pitch by 1/Stretch —
// the midway point is then within metric distance Stretch·(pitch/√2) =
// 1/√2 < 1 of some stop, closing the ℓ1 coverage gap the ℓ2-calibrated
// pitch left open. For metrics that dominate ℓ2 nowhere (Stretch = 1: ℓ2
// itself, ℓ∞, every ℓp with p ≥ 2) the plan is unchanged. This is the
// classic Θ(D²)-cost discovery trajectory for a single robot.
func SpiralPlanIn(m geom.Metric, center geom.Point, maxR float64) Plan {
	if maxR <= 0 {
		return Plan{Stops: []geom.Point{center}}
	}
	pitch := 1.0 / geom.MetricOrL2(m).Stretch()
	a := pitch / (2 * math.Pi)
	stops := []geom.Point{center}
	theta := 0.0
	for {
		r := a * theta
		if r > maxR {
			break
		}
		stops = append(stops, center.Add(geom.Pt(r*math.Cos(theta), r*math.Sin(theta))))
		// Advance θ so the arc step is ≈ pitch (ds ≈ √(r²+a²)·dθ).
		ds := math.Sqrt(r*r + a*a)
		theta += pitch / ds
	}
	return Plan{Stops: stops}
}

// Spiral drives robot p along a spiral from its current position until it
// sees a sleeping robot (returning its sighting), the spiral exceeds maxR, or
// the budget runs out. found is false in the latter two cases. The spiral's
// winding pitch follows the engine's metric (SpiralPlanIn), so discovery
// coverage holds under non-Euclidean norms too.
func Spiral(p *sim.Proc, maxR float64) (sim.Sighting, bool, error) {
	pl := SpiralPlanIn(p.Engine().Metric(), p.Self().Pos(), maxR)
	for _, stop := range pl.Stops {
		if err := p.MoveTo(stop); err != nil {
			return sim.Sighting{}, false, err
		}
		snap := p.Look()
		if len(snap.Asleep) > 0 {
			return snap.Asleep[0], true, nil
		}
	}
	return sim.Sighting{}, false, nil
}
