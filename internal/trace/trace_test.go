package trace

import (
	"strings"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

func record(t *testing.T) *Recorder {
	t.Helper()
	r := New()
	e := sim.NewEngine(sim.Config{
		Source:   geom.Origin,
		Sleepers: []geom.Point{geom.Pt(1, 0), geom.Pt(2, 0)},
		Trace:    r.Record,
	})
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		p.Look()
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, func(q *sim.Proc) {
			if err := q.MoveTo(geom.Pt(2, 0)); err != nil {
				t.Errorf("move: %v", err)
			}
			q.Wake(2, nil)
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecorderCounts(t *testing.T) {
	r := record(t)
	if r.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if got := r.CountKind("wake"); got != 2 {
		t.Errorf("wake events = %d, want 2", got)
	}
	if got := r.CountKind("look"); got != 1 {
		t.Errorf("look events = %d, want 1", got)
	}
}

func TestWakeFront(t *testing.T) {
	r := record(t)
	times, counts := r.WakeFront()
	if len(times) != 2 || len(counts) != 2 {
		t.Fatalf("front = %v %v", times, counts)
	}
	if counts[0] != 1 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if times[0] >= times[1] {
		t.Errorf("times not increasing: %v", times)
	}
}

func TestWriteCSV(t *testing.T) {
	r := record(t)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t,robot,kind,x,y,extra\n") {
		t.Errorf("header missing: %q", out[:40])
	}
	if !strings.Contains(out, "wake") {
		t.Error("wake rows missing")
	}
	if lines := strings.Count(out, "\n"); lines != r.Len()+1 {
		t.Errorf("csv lines = %d, want %d", lines, r.Len()+1)
	}
}
