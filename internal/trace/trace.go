// Package trace records simulation event streams and exports them as CSV
// for offline inspection and for regenerating the paper's schematic figures
// (robot trajectories, wake fronts, phase boundaries).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"freezetag/internal/sim"
)

// Recorder accumulates simulation events. Attach Record as the engine's
// Config.Trace callback.
type Recorder struct {
	events []sim.Event
}

// New returns an empty Recorder.
func New() *Recorder { return &Recorder{} }

// Record appends one event; pass this method to sim.Config.Trace.
func (r *Recorder) Record(ev sim.Event) { r.events = append(r.events, ev) }

// Events returns the recorded events in order.
func (r *Recorder) Events() []sim.Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// CountKind returns how many events of the given kind were recorded.
func (r *Recorder) CountKind(kind string) int {
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// WakeFront returns (time, cumulative-awake-count) pairs: the wake-up curve
// of the run, the quantitative content of the paper's wave figures.
func (r *Recorder) WakeFront() (times []float64, counts []int) {
	n := 0
	for _, ev := range r.events {
		if ev.Kind == "wake" {
			n++
			times = append(times, ev.T)
			counts = append(counts, n)
		}
	}
	return times, counts
}

// WriteCSV emits all events as CSV (t, robot, kind, x, y, extra).
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "robot", "kind", "x", "y", "extra"}); err != nil {
		return fmt.Errorf("trace: header: %w", err)
	}
	for _, ev := range r.events {
		rec := []string{
			strconv.FormatFloat(ev.T, 'g', 10, 64),
			strconv.Itoa(ev.Robot),
			ev.Kind,
			strconv.FormatFloat(ev.Pos.X, 'g', 10, 64),
			strconv.FormatFloat(ev.Pos.Y, 'g', 10, 64),
			ev.Extra,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
