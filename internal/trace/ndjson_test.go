package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

func TestWriteNDJSONGolden(t *testing.T) {
	r := New()
	r.Record(sim.Event{T: 0, Robot: 0, Kind: "spawn", Pos: geom.Pt(0, 0)})
	r.Record(sim.Event{T: 1.5, Robot: 0, Kind: "move", Pos: geom.Pt(1, -0.5), Extra: "to=1,-0.5"})
	r.Record(sim.Event{T: 1.5, Robot: 3, Kind: "wake", Pos: geom.Pt(1, -0.5)})

	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"t":0,"robot":0,"kind":"spawn","x":0,"y":0}`,
		`{"t":1.5,"robot":0,"kind":"move","x":1,"y":-0.5,"extra":"to=1,-0.5"}`,
		`{"t":1.5,"robot":3,"kind":"wake","x":1,"y":-0.5}`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("ndjson output:\n got  %q\n want %q", got, want)
	}
}

func TestWriteNDJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty recorder wrote %q", buf.String())
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestWriteNDJSONWriterError(t *testing.T) {
	r := New()
	r.Record(sim.Event{Kind: "spawn"})
	r.Record(sim.Event{Kind: "wake"})

	err := r.WriteNDJSON(&failWriter{after: 1})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("writer error not propagated: %v", err)
	}
}

func TestWriteNDJSONDeterministic(t *testing.T) {
	r := New()
	r.Record(sim.Event{T: 2, Robot: 1, Kind: "look", Pos: geom.Pt(0.25, 0.75), Extra: "r=1"})
	var a, b bytes.Buffer
	if err := r.WriteNDJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same recorder differ")
	}
}
