package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"freezetag/internal/sim"
)

// ndjsonEvent is the wire form of one event line. Field order is fixed by
// the struct declaration, so identical recordings always serialize to
// identical bytes — the solver service streams these from its cache.
type ndjsonEvent struct {
	T     float64 `json:"t"`
	Robot int     `json:"robot"`
	Kind  string  `json:"kind"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Extra string  `json:"extra,omitempty"`
}

// WriteNDJSON emits all events as newline-delimited JSON, one event object
// per line. An empty recorder writes nothing. The encoding is deterministic:
// equal event streams produce equal bytes.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	return WriteEventsNDJSON(w, r.events)
}

// WriteEventsNDJSON is WriteNDJSON over a bare event slice, for callers
// that hold recorded events without a Recorder (e.g. the solver service
// streaming a cached trace).
func WriteEventsNDJSON(w io.Writer, events []sim.Event) error {
	for _, ev := range events {
		line, err := json.Marshal(ndjsonEvent{
			T: ev.T, Robot: ev.Robot, Kind: ev.Kind,
			X: ev.Pos.X, Y: ev.Pos.Y, Extra: ev.Extra,
		})
		if err != nil {
			return fmt.Errorf("trace: ndjson: %w", err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("trace: ndjson write: %w", err)
		}
	}
	return nil
}
