// Package freezetag is the public API of the distributed Freeze Tag
// library, a reproduction of "Distributed Freeze Tag: a Sustainable Solution
// to Discover and Wake-up a Robot Swarm" (Gavoille, Hanusse, Le Bouder,
// Marcé — PODC 2025).
//
// The Freeze Tag Problem starts with one awake robot and a swarm of sleeping
// ones; waking requires co-location, and woken robots help. In the
// distributed setting reproduced here, positions are unknown, visibility is
// limited to distance 1, and robots communicate only face-to-face.
//
// Quickstart:
//
//	swarm := freezetag.RandomWalk(rand.New(rand.NewSource(1)), 40, 0.9)
//	tup := freezetag.TupleFor(swarm)                 // the (ℓ, ρ, n) knowledge
//	res, rep, err := freezetag.Solve(freezetag.AGrid, swarm, tup, 0)
//	// res.Makespan, res.MaxEnergy, res.AllAwake, rep.Rounds ...
//
// Four algorithms are available, mirroring the paper's Table 1 plus the §5
// extension:
//
//	ASeparator     makespan O(ρ + ℓ²log(ρ/ℓ)), unbounded energy   (Thm 1)
//	AGrid          energy O(ℓ²) (optimal), makespan O(ℓ·ξℓ)        (Thm 4)
//	AWave          energy O(ℓ²logℓ), makespan O(ξℓ + ℓ²log(ξℓ/ℓ))  (Thm 5)
//	ASeparatorAuto ASeparator needing only ℓ (estimates ρ, §5)
//
// Everything below is a thin facade over the implementation packages in
// internal/; see DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction results.
package freezetag

import (
	"context"
	"math/rand"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/sim"
)

// Point is a position in the plane.
type Point = geom.Point

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Metric is a pluggable plane distance (any ℓp norm, p ≥ 1). Every distance
// in the model — travel time, energy, the radius-1 look, and the derived
// (ℓ, ρ) knowledge — is measured in it; wake-up-time bounds and algorithm
// behavior change qualitatively between ℓ1, ℓ2 and ℓ∞, which is exactly the
// experiment axis the *In variants below open. The default everywhere is ℓ2,
// the paper's setting.
type Metric = geom.Metric

// The built-in metrics: Manhattan, Euclidean, Chebyshev.
var (
	L1   Metric = geom.L1
	L2   Metric = geom.L2
	LInf Metric = geom.LInf
)

// Lp returns the general ℓp metric for p ≥ 1 (p = 1, 2, +Inf normalize to
// L1, L2, LInf). Degenerate exponents — NaN or p < 1 — are rejected.
func Lp(p float64) (Metric, error) { return geom.Lp(p) }

// ParseMetric resolves the CLI/wire spelling of a metric: "l1", "l2",
// "linf", or "lp:<p>"; the empty string means ℓ2. Unknown names and
// degenerate exponents (lp:0, lp:NaN) are errors, never silent defaults.
func ParseMetric(s string) (Metric, error) { return geom.ParseMetric(s) }

// Instance is a dFTP problem: a source position plus the initial positions
// of the sleeping robots. Instances marshal to/from JSON via Save and Load.
type Instance = instance.Instance

// NewInstance builds an instance from explicit positions.
func NewInstance(name string, source Point, sleepers []Point) *Instance {
	return &Instance{Name: name, Source: source, Points: sleepers}
}

// LoadInstance reads a JSON instance from a file.
func LoadInstance(path string) (*Instance, error) { return instance.Load(path) }

// Tuple is the (ℓ, ρ, n) knowledge handed to the source robot: an upper
// bound ℓ on the connectivity threshold, an upper bound ρ on the radius, and
// the swarm size n (never actually used by the algorithms, per §5).
type Tuple = dftp.Tuple

// TupleFor derives an admissible tuple from an instance's exact Euclidean
// parameters.
func TupleFor(in *Instance) Tuple { return dftp.TupleFor(in) }

// TupleForIn derives the admissible tuple under metric m: ℓ* and ρ* are
// metric-dependent, so the knowledge handed to the source must be measured
// in the metric the simulation runs in.
func TupleForIn(m Metric, in *Instance) Tuple { return dftp.TupleForIn(m, in) }

// Result summarizes a run: makespan, per-robot and total energy, completion.
type Result = sim.Result

// Report carries algorithm-level diagnostics (rounds, schedule misses).
type Report = dftp.Report

// Algorithm is one of the paper's dFTP algorithms.
type Algorithm = dftp.Algorithm

// The algorithms of the paper (see the package comment for their bounds).
var (
	ASeparator     Algorithm = dftp.ASeparator{}
	AGrid          Algorithm = dftp.AGrid{}
	AWave          Algorithm = dftp.AWave{}
	ASeparatorAuto Algorithm = dftp.ASeparatorAuto{}
)

// Solve runs alg on the instance with the given per-robot energy budget
// (≤ 0 means unconstrained) and returns the simulation result and report.
// Runs are deterministic: identical inputs give identical results.
func Solve(alg Algorithm, in *Instance, tup Tuple, budget float64) (Result, *Report, error) {
	return dftp.Solve(alg, in, tup, budget)
}

// SolveIn is Solve with every distance measured under metric m (nil means
// ℓ2): travel times, energy, and the radius-1 look. Pass a tuple measured in
// the same metric (TupleForIn).
func SolveIn(m Metric, alg Algorithm, in *Instance, tup Tuple, budget float64) (Result, *Report, error) {
	return dftp.SolveIn(context.Background(), m, alg, in, tup, budget, nil)
}

// Portfolio is the racing meta-algorithm: an ordered list of entrant
// algorithms plus an Objective. SolvePortfolio races the entrants
// concurrently on one instance and returns the best schedule; see
// internal/portfolio for the determinism contract (same portfolio, same
// instance ⇒ identical winner and stats at any worker count).
type Portfolio = portfolio.Portfolio

// Objective judges a portfolio race; build one with ParseObjective or use
// the types of internal/portfolio directly.
type Objective = portfolio.Objective

// PortfolioResult is the outcome of a race: the winner's full result plus
// deterministic per-racer stats.
type PortfolioResult = portfolio.Result

// ParseObjective builds an Objective from its CLI/wire spelling:
// "min-makespan", "min-energy", "weighted:0.7,0.3",
// "first-under-budget:makespan=120,energy=50". The empty string means
// min-makespan.
func ParseObjective(s string) (Objective, error) { return portfolio.ParseObjective(s) }

// SolvePortfolio races every algorithm of p concurrently on the instance
// with the given per-robot energy budget and returns the winner under p's
// objective. When a racer meets a first-under-budget target, every entrant
// behind it in portfolio order is cancelled mid-simulation; entrants ahead
// of it still run to completion (any of them may supersede it), so put the
// cheapest likely-satisfying algorithms first.
func SolvePortfolio(p Portfolio, in *Instance, tup Tuple, budget float64) (*PortfolioResult, error) {
	return portfolio.Race(p, in, tup, budget, portfolio.Options{})
}

// SolvePortfolioIn is SolvePortfolio with every racer simulating under
// metric m — the objectives thereby score makespan and energy in the
// instance's metric automatically.
func SolvePortfolioIn(m Metric, p Portfolio, in *Instance, tup Tuple, budget float64) (*PortfolioResult, error) {
	return portfolio.Race(p, in, tup, budget, portfolio.Options{Metric: m})
}

// HashRequest returns the content-addressed key of a solve request: the
// SHA-256 hex of a canonical encoding of (algorithm, instance, tuple,
// budget) with stable field order and normalized floats. Because Solve is
// deterministic, the key identifies the result as well as the request — it
// is the cache key of the solver service (cmd/dftp-serve) and the "hash"
// field of its responses. Budgets ≤ 0 all mean "unconstrained" and hash
// identically.
func HashRequest(alg Algorithm, in *Instance, tup Tuple, budget float64) string {
	return instance.HashRequest(alg.Name(), in, tup.Ell, tup.Rho, tup.N, budget)
}

// HashRequestIn is HashRequest under metric m. ℓ2 (or nil) produces the
// pre-metric encoding byte-for-byte — existing cache keys survive — while
// any other metric hashes under a bumped encoding version that includes the
// metric's canonical name.
func HashRequestIn(m Metric, alg Algorithm, in *Instance, tup Tuple, budget float64) string {
	return instance.HashRequestIn(m, alg.Name(), in, tup.Ell, tup.Rho, tup.N, budget)
}

// --- Instance generators -----------------------------------------------------

// Line places n robots on the x-axis with the given spacing — the canonical
// maximum-eccentricity family (ξℓ = ρ* = n·spacing).
func Line(n int, spacing float64) *Instance { return instance.Line(n, spacing) }

// RandomWalk generates n robots along a random walk from the source with
// steps in [step/2, step]; the swarm is step-connected by construction.
func RandomWalk(rng *rand.Rand, n int, step float64) *Instance {
	return instance.RandomWalk(rng, n, step)
}

// UniformDisk scatters n robots uniformly in a radius-r disk at the source.
func UniformDisk(rng *rand.Rand, n int, r float64) *Instance {
	return instance.UniformDisk(rng, n, r)
}

// GridSwarm builds a k×k robot grid with the given spacing.
func GridSwarm(k int, spacing float64) *Instance { return instance.GridSwarm(k, spacing) }

// ClusterChain strings `clusters` clusters of `per` robots along a line.
func ClusterChain(rng *rand.Rand, clusters, per int, sep, radius float64) *Instance {
	return instance.ClusterChain(rng, clusters, per, sep, radius)
}

// Family generates an instance from a named workload family ("line", "walk",
// "disk", "grid", "chain"), optionally with "+"-separated heterogeneity
// modifiers — "walk+speedband:0.5" draws per-robot speeds in [0.5, 1],
// "grid+capband:30" per-robot energy capacities in [15, 30] — without
// perturbing the base point set.
func Family(name string, n int, param float64, seed int64) (*Instance, error) {
	return instance.Family(name, n, param, seed)
}

// FamilyNames lists the workload families Family accepts.
func FamilyNames() []string { return instance.FamilyNames() }

// --- Heterogeneous robots ----------------------------------------------------

// Profile is one robot's capability profile: Speed scales travel time
// (distance δ takes time δ/Speed) and Capacity is a private energy budget
// (≤ 0 inherits the uniform budget). Attach one Profile per sleeping robot
// via Instance.Profiles; an empty Profiles slice is the homogeneous
// unit-speed model, byte-identical in hashing and results to instances that
// predate profiles.
type Profile = instance.Profile

// UniformProfiles returns n copies of one profile, the explicit spelling of
// a uniform swarm (hashes differently from no profiles at all — the request
// records what was asked).
func UniformProfiles(n int, p Profile) []Profile {
	ps := make([]Profile, n)
	for i := range ps {
		ps[i] = p
	}
	return ps
}

// Params are an instance's exact (ρ*, ℓ*, ξ) values.
type Params struct {
	Rho float64 // ρ*: swarm radius
	Ell float64 // ℓ*: connectivity threshold
	Xi  float64 // ξ: ℓ*-eccentricity of the source
	N   int
}

// ParamsOf computes the exact Euclidean parameters of an instance.
func ParamsOf(in *Instance) Params {
	p := in.Params()
	return Params{Rho: p.Rho, Ell: p.Ell, Xi: p.Xi, N: p.N}
}

// ParamsOfIn computes the exact parameters of an instance under metric m —
// the same point set generally has different (ρ*, ℓ*, ξ) per metric.
func ParamsOfIn(m Metric, in *Instance) Params {
	p := in.ParamsIn(m)
	return Params{Rho: p.Rho, Ell: p.Ell, Xi: p.Xi, N: p.N}
}
